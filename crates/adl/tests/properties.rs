//! Property-based tests for the ADL: render→parse roundtrips and rule
//! monitor invariants.

use aas_adl::ast::{Cmp, TemporalOp};
use aas_adl::parser::parse_system;
use aas_adl::rules::RuleMonitor;
use aas_adl::validate::validate;
use proptest::prelude::*;

/// Renders a small random system to ADL source.
fn render(
    nodes: &[(String, f64)],
    comps: &[(String, String, u32, usize)],
    binds: &[(usize, usize)],
) -> String {
    let mut src = String::from("system Gen {\n");
    for (name, cap) in nodes {
        src.push_str(&format!("  node {name} {{ capacity = {cap:.1}; }}\n"));
    }
    for (name, ty, ver, node_idx) in comps {
        let node = &nodes[node_idx % nodes.len()].0;
        src.push_str(&format!("  component {name} : {ty} v{ver} on {node}\n"));
    }
    if !comps.is_empty() {
        src.push_str("  connector w { policy direct; }\n");
        for (i, (from, to)) in binds.iter().enumerate() {
            let from = &comps[from % comps.len()].0;
            let to = &comps[to % comps.len()].0;
            src.push_str(&format!("  bind {from}.out{i} -> w -> {to}.in;\n"));
        }
    }
    src.push('}');
    src
}

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}"
}

proptest! {
    /// Rendered systems always parse back with matching structure.
    #[test]
    fn render_parse_roundtrip(
        node_names in prop::collection::btree_set(ident(), 1..5),
        caps in prop::collection::vec(1.0f64..1000.0, 5),
        comp_names in prop::collection::btree_set(ident(), 0..6),
        placements in prop::collection::vec(0usize..8, 8),
        binds in prop::collection::vec((0usize..8, 0usize..8), 0..4),
    ) {
        let nodes: Vec<(String, f64)> = node_names
            .iter()
            .cloned()
            .zip(caps.iter().cloned().cycle())
            .collect();
        // Component names must not collide with node names.
        let comps: Vec<(String, String, u32, usize)> = comp_names
            .iter()
            .filter(|c| !node_names.contains(*c))
            .enumerate()
            .map(|(i, name)| (format!("c_{name}"), "Type".to_owned(), (i % 5 + 1) as u32, placements[i % placements.len()]))
            .collect();
        let binds: Vec<(usize, usize)> = if comps.is_empty() { Vec::new() } else { binds };
        let src = render(&nodes, &comps, &binds);
        let sys = parse_system(&src).expect("generated source must parse");
        prop_assert_eq!(sys.nodes.len(), nodes.len());
        prop_assert_eq!(sys.components.len(), comps.len());
        prop_assert_eq!(sys.bindings.len(), binds.len());
        // Unique names + resolvable refs: validation may only complain
        // about unused connectors (we declare one even with no binds).
        for issue in validate(&sys) {
            let text = issue.to_string();
            prop_assert!(
                text.contains("never used"),
                "unexpected issue: {text}\nsource:\n{src}"
            );
        }
    }

    /// `implies` fires exactly on ticks where the condition holds.
    #[test]
    fn implies_matches_condition(values in prop::collection::vec(0.0f64..20.0, 1..100)) {
        let mut m = RuleMonitor::new(TemporalOp::Implies, Cmp::Gt, 10.0);
        for &v in &values {
            prop_assert_eq!(m.step(v), v > 10.0);
        }
        let expected = values.iter().filter(|v| **v > 10.0).count() as u64;
        prop_assert_eq!(m.fires(), expected);
    }

    /// `implies_later` fires exactly one tick after the condition held:
    /// total fires equals condition-true ticks among all but the last.
    #[test]
    fn implies_later_shifts_by_one(values in prop::collection::vec(0.0f64..20.0, 2..100)) {
        let mut m = RuleMonitor::new(TemporalOp::ImpliesLater, Cmp::Gt, 10.0);
        let mut fires = Vec::new();
        for &v in &values {
            fires.push(m.step(v));
        }
        for i in 1..values.len() {
            prop_assert_eq!(fires[i], values[i - 1] > 10.0, "at {}", i);
        }
        prop_assert!(!fires[0]);
    }

    /// `wait_until` fires at most once between rearms.
    #[test]
    fn wait_until_fires_once(values in prop::collection::vec(0.0f64..20.0, 1..100)) {
        let mut m = RuleMonitor::new(TemporalOp::WaitUntil, Cmp::Gt, 10.0);
        let mut fired = 0;
        for &v in &values {
            if m.step(v) {
                fired += 1;
            }
        }
        prop_assert!(fired <= 1);
        // It fires iff some rising edge exists.
        let mut prev = false;
        let mut has_edge = false;
        for &v in &values {
            let cond = v > 10.0;
            if cond && !prev {
                has_edge = true;
            }
            prev = cond;
        }
        prop_assert_eq!(fired == 1, has_edge);
    }

    /// `permitted_if` permits exactly while the condition holds.
    #[test]
    fn permitted_if_gates(values in prop::collection::vec(0.0f64..20.0, 1..50)) {
        let m = RuleMonitor::new(TemporalOp::PermittedIf, Cmp::Le, 10.0);
        for &v in &values {
            prop_assert_eq!(m.permits(v), v <= 10.0);
        }
    }

    /// `implies_before` never fires while the condition itself holds.
    #[test]
    fn implies_before_is_anticipatory(values in prop::collection::vec(0.0f64..200.0, 1..100)) {
        let mut m = RuleMonitor::new(TemporalOp::ImpliesBefore, Cmp::Gt, 100.0);
        for &v in &values {
            let fired = m.step(v);
            if v > 100.0 {
                prop_assert!(!fired, "fired during the violation at {v}");
            }
            if fired {
                prop_assert!(v >= 80.0, "fired too early at {v}");
            }
        }
    }
}
